module I = Sekitei_util.Interval
module Table = Sekitei_util.Ascii_table
module Topology = Sekitei_network.Topology
module Model = Sekitei_spec.Model

type binding = {
  resource : string;
  location : string;
  capacity : float;
  step_used : float;
  total_used : float;
  slack : float;
}

type step = {
  index : int;
  label : string;
  cost_lb : float;
  realized_cost : float;
  levels : (string * I.t) list;
  binding : binding option;
}

type t = { steps : step list; plan_cost : float; realized_cost : float }

let node_name (pb : Problem.t) n =
  (Topology.get_node pb.topo n).Topology.node_name

let link_location (pb : Problem.t) l =
  let link = Topology.get_link pb.topo l in
  let a, b = link.Topology.ends in
  Printf.sprintf "%s-%s (%s)" (node_name pb a) (node_name pb b)
    (match link.Topology.kind with Topology.Lan -> "LAN" | Topology.Wan -> "WAN")

(* The level assignment shown for an action: the interfaces it produces
   (its output row of the optimistic resource map), falling back to the
   consumed interfaces for pure sinks like the client placement. *)
let levels_of (pb : Problem.t) (a : Action.t) =
  let named arr =
    Array.to_list arr
    |> List.map (fun (i, ivl) -> (pb.Problem.ifaces.(i).Model.iface_name, ivl))
  in
  match named a.Action.out_levels with [] -> named a.Action.in_levels | ls -> ls

let assoc_amount key l = Option.value (List.assoc_opt key l) ~default:0.

(* Per-pool consumption of a metrics snapshot, keyed the way the binding
   constraint of each action kind needs it. *)
let cpu_at (m : Replay.metrics) node = assoc_amount node m.Replay.node_cpu_used
let lbw_at (m : Replay.metrics) link = assoc_amount link m.Replay.link_used

let explain (pb : Problem.t) (plan : Plan.t) =
  let rec replay rs acc = function
    | [] -> Ok (List.rev acc, rs)
    | (a : Action.t) :: rest -> (
        match Replay.extend pb ~mode:Replay.From_init rs a with
        | Error f -> Error (Format.asprintf "%a" Replay.pp_failure f)
        | Ok rs' ->
            let before = Replay.rstate_metrics pb rs
            and after = Replay.rstate_metrics pb rs' in
            let realized =
              Replay.rstate_cost rs' -. Replay.rstate_cost rs
            in
            replay rs' ((a, realized, before, after) :: acc) rest)
  in
  match replay (Replay.initial pb) [] plan.Plan.steps with
  | Error _ as e -> e
  | Ok (trace, final_rs) ->
      let final = Replay.rstate_metrics pb final_rs in
      let binding_of (a : Action.t) before after =
        match a.Action.kind with
        | Action.Place { node; _ } ->
            let capacity = Problem.node_cap pb node "cpu" in
            if capacity <= 0. then None
            else
              let total_used = cpu_at final node in
              Some
                {
                  resource = "cpu";
                  location = node_name pb node;
                  capacity;
                  step_used = cpu_at after node -. cpu_at before node;
                  total_used;
                  slack = capacity -. total_used;
                }
        | Action.Cross { link; _ } ->
            let capacity = Problem.link_cap pb link "lbw" in
            if capacity <= 0. then None
            else
              let total_used = lbw_at final link in
              Some
                {
                  resource = "lbw";
                  location = link_location pb link;
                  capacity;
                  step_used = lbw_at after link -. lbw_at before link;
                  total_used;
                  slack = capacity -. total_used;
                }
      in
      let steps =
        List.mapi
          (fun index ((a : Action.t), realized, before, after) ->
            {
              index;
              label = a.Action.label;
              cost_lb = a.Action.cost_lb;
              realized_cost = realized;
              levels = levels_of pb a;
              binding = binding_of a before after;
            })
          trace
      in
      (* Sum in the search's accumulation order (regression prepends, so
         g added the last-executed action's cost first): the total then
         equals [Plan.cost_lb] bit for bit. *)
      let plan_cost =
        List.fold_left (fun acc s -> acc +. s.cost_lb) 0. (List.rev steps)
      in
      Ok { steps; plan_cost; realized_cost = final.Replay.realized_cost }

let level_cell levels =
  String.concat " "
    (List.map (fun (name, ivl) -> name ^ I.to_string ivl) levels)

let render t =
  let tbl =
    Table.create
      ~aligns:
        [
          Table.Right; Table.Left; Table.Right; Table.Right; Table.Left;
          Table.Left; Table.Right; Table.Right; Table.Right;
        ]
      [
        "#"; "action"; "cost lb"; "realized"; "levels"; "binding"; "cap";
        "used"; "slack";
      ]
  in
  List.iter
    (fun s ->
      let binding, cap, used, slack =
        match s.binding with
        | None -> ("-", "-", "-", "-")
        | Some b ->
            ( Printf.sprintf "%s@%s" b.resource b.location,
              Table.float_cell b.capacity,
              Table.float_cell b.total_used,
              Table.float_cell b.slack )
      in
      Table.add_row tbl
        [
          string_of_int s.index;
          s.label;
          Table.float_cell s.cost_lb;
          Table.float_cell s.realized_cost;
          level_cell s.levels;
          binding;
          cap;
          used;
          slack;
        ])
    t.steps;
  Table.add_separator tbl;
  Table.add_row tbl
    [
      "";
      "total";
      Table.float_cell t.plan_cost;
      Table.float_cell t.realized_cost;
      "";
      "";
      "";
      "";
      "";
    ];
  Table.render tbl

(* ------------------------------------------------------------------ *)
(* Unsolvability certificates                                          *)
(* ------------------------------------------------------------------ *)

type certificate =
  | Unreachable_cut of { goal : string; cut : string; chain : string list }
  | Search_frontier of {
      best_f : float;
      tail : string list;
      unmet : string list;
    }

(* Walk the support chain of an infinite-cost proposition down to the
   proposition that actually got pruned: one with no supporting action at
   all, or whose only infinite-cost preconditions were already visited
   (cyclic support — equally unachievable from the initial state).  Every
   supporting action of an infinite-cost proposition must itself carry an
   infinite-cost precondition, so the walk always makes progress until
   one of those two terminal cases. *)
let cut_chain (pb : Problem.t) plrg goal_prop =
  let visited = Hashtbl.create 16 in
  let rec go p acc depth =
    Hashtbl.replace visited p ();
    let acc = p :: acc in
    if depth > 100 then acc
    else
      let next =
        List.find_map
          (fun aid ->
            let a = pb.Problem.actions.(aid) in
            Array.fold_left
              (fun found q ->
                match found with
                | Some _ -> found
                | None ->
                    if
                      (not (Hashtbl.mem visited q))
                      && not (Float.is_finite (Plrg.cost plrg q))
                    then Some q
                    else None)
              None a.Action.pre)
          pb.Problem.supports.(p)
      in
      match next with None -> acc | Some q -> go q acc (depth + 1)
  in
  List.rev_map (Problem.prop_label pb) (go goal_prop [] 0)

let unreachable_certificate (pb : Problem.t) plrg =
  match Plrg.unreachable_goals plrg with
  | [] -> None
  | goal :: _ ->
      let chain = cut_chain pb plrg goal in
      let cut =
        match List.rev chain with c :: _ -> c | [] -> assert false
      in
      Some
        (Unreachable_cut { goal = Problem.prop_label pb goal; cut; chain })

let frontier_certificate (pb : Problem.t) ~best_f (fr : Rg.frontier) =
  Search_frontier
    {
      best_f;
      tail = List.map (fun (a : Action.t) -> a.Action.label) fr.Rg.f_tail;
      unmet =
        Array.to_list fr.Rg.f_pending |> List.map (Problem.prop_label pb);
    }

let render_certificate = function
  | Unreachable_cut { goal; cut; chain } ->
      Printf.sprintf
        "unsolvable: goal %s is logically unreachable\n\
        \  first goal-relevant proposition pruned by the PLRG: %s\n\
        \  support chain: %s\n"
        goal cut
        (String.concat " <- " chain)
  | Search_frontier { best_f; tail; unmet } ->
      let bullet prefix = function
        | [] -> prefix ^ " (none)\n"
        | items ->
            prefix ^ "\n"
            ^ String.concat ""
                (List.map (fun s -> "    " ^ s ^ "\n") items)
      in
      Printf.sprintf
        "search budget exhausted: best frontier bound f = %g\n%s%s" best_f
        (bullet "  best-f node actions:" tail)
        (bullet "  unmet preconditions:" unmet)
