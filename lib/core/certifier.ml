(* Indirection point for the independent plan certifier.  The session
   honours [config.certify] through this hook so that lib/core never
   depends on the analysis library implementing the check (which itself
   depends on lib/core). *)

type checker = Problem.t -> Plan.t -> (unit, string) result

let hook : checker option ref = ref None
let install f = hook := Some f
let installed () = Option.is_some !hook
let run pb plan = match !hook with None -> Ok () | Some f -> f pb plan
