(** Forward execution of plan tails in optimistic resource maps (paper
    section 3.2.3, Figure 8).

    A tail is a totally ordered action sequence executed front to back.
    Every interface property carries an interval; each action first
    {e meets} the current interval with its assumed level (degradable
    streams may be throttled down into the level, upgradable ones up),
    then checks its conditions for satisfiability, consumes node/link
    resources at the interval supremum (the paper's greedy "maximum
    possible utilization" — which under level-throttling is the realized
    operating point), and finally produces its outputs by monotone
    interval evaluation of the effect formulae.

    Three modes:
    - [Optimistic] — unknown inputs are seeded from the action's assumed
      level capped by the interface's global maximum ({!Problem.t.iface_max});
      used to prune partial plans during RG search.  A failure here is
      definitive: no completion of the tail can succeed.
    - [From_init] — inputs must be produced by earlier actions or the
      initial state; used for the final soundness check and for deployment
      metrics.
    - [Regression] — [Optimistic], except that checked (unimportant)
      node/link levels and [node.r]/[link.r] condition variables are
      evaluated against the {e base} capacity rather than the running
      remainder.  This is the mode for the RG search's incremental
      extension: there each [extend] appends the action that executes
      {e first} in plan time, so the running remainder already includes
      consumption by plan-later actions — amounts that are not yet
      consumed at the moment the new action really runs.  Consumption
      sums themselves are order-independent, so capacity exhaustion
      checks stay exact. *)

module I = Sekitei_util.Interval

type mode = Optimistic | From_init | Regression

type failure = {
  failed_index : int;  (** position in the tail, -1 for goal checks *)
  failed_action : string;  (** action label or goal description *)
  reason : string;
}

type metrics = {
  realized_cost : float;
      (** cost formulae evaluated at the operating points *)
  lan_peak : float;  (** max bandwidth reserved on any LAN link *)
  wan_peak : float;
  lan_total : float;
  wan_total : float;
  node_cpu_used : (int * float) list;  (** per node, "cpu" consumption *)
  link_used : (int * float) list;
      (** exact per-link ["lbw"] consumption, link id ascending *)
  delivered : (int * int * float) list;
      (** (iface, node, operating value) at every tail-end availability *)
}

type outcome = (metrics, failure) result

(** [run problem ~mode tail] executes the tail (earliest action first).
    [source_scale] (default 1) scales every source's capacity — the hook
    the post-processing optimizer uses to throttle the supply.
    [telemetry] wraps the execution in a ["replay"] span carrying the
    tail length and outcome (the RG search passes its handle through for
    the final from-init validation). *)
val run :
  ?telemetry:Sekitei_telemetry.Telemetry.t ->
  ?source_scale:float ->
  Problem.t ->
  mode:mode ->
  Action.t list ->
  outcome

(** {1 Incremental replay states}

    A snapshot of the replay execution state after some action sequence.
    [extend] applies {e one} action against a copy-on-write snapshot of the
    parent state, leaving the parent untouched — the RG search carries one
    [rstate] per node so pushing a successor costs one action execution
    instead of a full tail replay.

    Equivalence guarantee: folding [extend pb ~mode] over an action list
    [l] from [initial pb] yields the same accept/reject outcome — and on
    acceptance the same {!metrics} — as [run pb ~mode l].  Both run the
    identical per-action execution code; [extend] merely snapshots the
    state between actions. *)

type rstate

(** State of the empty sequence ([source_scale] as in {!run}). *)
val initial : ?source_scale:float -> Problem.t -> rstate

(** [extend pb ~mode rs act] executes [act] against a snapshot of [rs].
    [rs] itself is never mutated and remains valid for further extensions
    (search-tree branching).  The failure's [failed_index] is the number
    of actions already applied to [rs]. *)
val extend : Problem.t -> mode:mode -> rstate -> Action.t -> (rstate, failure) result

(** Accumulated realized cost of the applied actions. *)
val rstate_cost : rstate -> float

(** Number of actions applied. *)
val rstate_length : rstate -> int

(** Deployment metrics of the state, as {!run} would report them. *)
val rstate_metrics : Problem.t -> rstate -> metrics

val pp_failure : Format.formatter -> failure -> unit
