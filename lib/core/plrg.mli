(** Phase 1: the per-proposition logical regression graph (paper
    section 3.2.1).

    Estimates, for every proposition, the minimum logical cost of achieving
    it from the initial state, ignoring resource interactions: the cost of
    a proposition is the minimum over supporting actions of (action cost
    lower bound + the maximum cost of the action's preconditions); initial
    propositions cost 0.  This is the classic admissible h_max heuristic,
    computed with a Dijkstra-style label-correcting sweep.

    The PLRG also yields the {e relevant} subgraph — propositions and
    actions on some finite-cost support chain backward from the goals —
    whose node counts Table 2 reports, and proves unreachability when a
    goal has infinite cost (the problem then has no solution at all). *)

type t

(** [telemetry] records the relevant-cone sizes as counters
    ([plrg.relevant_props] / [plrg.relevant_actions]); the planner wraps
    the call in a ["plrg"] span.  [deadline] is polled once per label
    relaxation; on expiry the sweep raises
    [Sekitei_util.Deadline.Expired "plrg"] — a half-finished cost table
    admits no useful partial answer. *)
val build :
  ?telemetry:Sekitei_telemetry.Telemetry.t ->
  ?deadline:Sekitei_util.Deadline.t ->
  Problem.t ->
  t

(** Admissible lower bound on the cost of achieving a proposition;
    [infinity] when logically unreachable. *)
val cost : t -> int -> float

(** Is every goal reachable? *)
val goals_reachable : t -> bool

(** Goal proposition ids the cost sweep proved logically unreachable
    (infinite cost) — the evidence behind
    {!Planner.failure_reason.Unreachable_goal}. *)
val unreachable_goals : t -> int list

(** Action ids usable on some finite-cost support chain (every
    precondition reachable).  The RG restricts branching to these. *)
val relevant_actions : t -> int list

(** Is the given action relevant? *)
val action_relevant : t -> int -> bool

(** Table 2 statistics: number of proposition / action nodes in the
    backward-relevant cone from the goals. *)
val stats : t -> int * int
