.PHONY: build test check bench bench-json profile clean

build:
	dune build

test:
	dune runtest

# One-stop verification: build, the full test suite (unit + property +
# cram), and a fresh machine-readable bench run re-parsed through the
# JSON schema checker.
check:
	dune build
	dune runtest
	dune exec bench/main.exe -- --json --check --out /tmp/sekitei_bench_check.json

# Full benchmark run: every paper exhibit, ablations, microbenchmarks.
bench:
	dune exec bench/main.exe

# Machine-readable planner benchmark: writes BENCH_rg.json (and stdout).
# The perf trajectory of the RG search is tracked across commits there.
bench-json:
	dune exec bench/main.exe -- --json

# Profile the Small-C run: trace every planner phase to JSONL and render
# the span tree / counter summary.
profile:
	dune build bin tools
	dune exec -- sekitei plan --network small --levels C \
	  --trace /tmp/sekitei_profile.jsonl > /dev/null
	dune exec -- tools/trace_report.exe /tmp/sekitei_profile.jsonl

clean:
	dune clean
