.PHONY: build test bench bench-json clean

build:
	dune build

test:
	dune runtest

# Full benchmark run: every paper exhibit, ablations, microbenchmarks.
bench:
	dune exec bench/main.exe

# Machine-readable planner benchmark: writes BENCH_rg.json (and stdout).
# The perf trajectory of the RG search is tracked across commits there.
bench-json:
	dune exec bench/main.exe -- --json

clean:
	dune clean
