.PHONY: build test lint cram check check-smoke bench bench-json bench-gate metrics-smoke profile clean

build:
	dune build

test:
	dune runtest

# Source hygiene.  The build image has no ocamlformat, so the lint is
# the closest equivalent: `dune build @check` typechecks every module
# (including ones no executable pulls in), and a grep rejects trailing
# whitespace and tab indentation in OCaml sources.  A second grep
# rejects catch-all exception handlers (`with _ ->`) outside test/:
# they swallow Out_of_memory and Stack_overflow and have twice hidden
# real parse bugs.  A deliberate catch-all must carry the annotation
# `(* lint: allow-catch-all *)` on the same line.
lint:
	dune build @check
	@if grep -rnI --include='*.ml' --include='*.mli' -e ' $$' -e '	' \
	  lib bin test examples bench tools; then \
	  echo "lint: trailing whitespace / tab indentation found"; exit 1; \
	else echo "lint: clean"; fi
	@if grep -rnI --include='*.ml' 'with _ ->' lib bin examples bench tools \
	  | grep -v 'lint: allow-catch-all'; then \
	  echo "lint: catch-all handler; name the exception or annotate" \
	    "with (* lint: allow-catch-all *)"; exit 1; \
	else echo "lint: no catch-all handlers"; fi

# The session/mutation cram tests, re-run even when dune's cache is
# warm: these pin the CLI surface of stable link ids (stale-id updates
# are script errors) and the warm-replan output format.
cram:
	dune test --force test/cli.t

# One-stop verification: lint, build, the full test suite (unit +
# property + cram), an explicit uncached run of the session/mutation
# cram, and a fresh machine-readable bench run re-parsed through the
# JSON schema checker and diffed against the checked-in baseline.
check:
	$(MAKE) lint
	dune build
	dune runtest
	$(MAKE) cram
	$(MAKE) check-smoke
	$(MAKE) metrics-smoke
	$(MAKE) bench-gate

# Static-analysis smoke: `sekitei check` must accept every shipped
# feasible spec and prove the capacity-starved diamond infeasible
# (exit 2) without ever running the RG search.  Guards both directions
# of the preflight analyzer: a grounding change that kills a feasible
# spec, or one that loses the infeasibility proof, fails here.
check-smoke:
	dune build bin
	@for spec in examples/specs/*.spec; do \
	  case $$spec in \
	  *infeasible*) \
	    dune exec -- sekitei check --spec $$spec > /dev/null 2>&1; \
	    test $$? -eq 2 || \
	      { echo "check-smoke: $$spec: expected infeasibility (exit 2)"; \
	        exit 1; }; \
	    echo "check-smoke: $$spec proven infeasible";; \
	  *) \
	    dune exec -- sekitei check --spec $$spec > /dev/null || \
	      { echo "check-smoke: $$spec: expected a clean report"; exit 1; }; \
	    echo "check-smoke: $$spec clean";; \
	  esac; \
	done

# Regression gate: rerun the tracked scenarios and fail if any gated
# metric (search_ms, rg_created, slrg_ms, warm_search_ms) regressed
# >200% against BENCH_rg.json.  The timing threshold is deliberately
# loose — the small scenarios finish in well under a millisecond, where
# run-to-run noise is large — while rg_created is exactly reproducible,
# so an algorithmic search-space blowup trips the gate on any hardware.
# After an intentional perf change, refresh the baseline with
# `make bench-json` and commit the BENCH_rg.json diff.
bench-gate:
	dune exec bench/main.exe -- --json --check --repeat 3 --jobs 1 --warm \
	  --out /tmp/sekitei_bench_gate.json \
	  --baseline BENCH_rg.json --max-regress 200

# Observability smoke: plan Small-C through the metrics subcommand and
# schema-validate both exposition formats (--check exits 3 on a schema
# violation), then force a deadline failure with the flight recorder
# armed and assert the dump is written and readable.  Guards the
# always-on metrics path end to end: an encoder change that would break
# a scraper or the postmortem tooling fails here, not on a dashboard.
metrics-smoke:
	dune build bin tools
	dune exec -- sekitei metrics --network small --levels C --repeat 2 \
	  --check > /dev/null
	dune exec -- sekitei metrics --network small --levels C --format json \
	  --check > /dev/null
	@rm -f /tmp/sekitei_flight_smoke.jsonl
	-dune exec -- sekitei plan --network small --levels C --deadline 0 \
	  --flight /tmp/sekitei_flight_smoke.jsonl > /dev/null 2>&1
	@test -s /tmp/sekitei_flight_smoke.jsonl || \
	  { echo "metrics-smoke: no flight dump written"; exit 1; }
	@dune exec -- tools/trace_report.exe /tmp/sekitei_flight_smoke.jsonl \
	  | grep -q "flight-recorder dump" || \
	  { echo "metrics-smoke: trace_report cannot read the dump"; exit 1; }
	@echo "metrics-smoke: ok"

# Full benchmark run: every paper exhibit, ablations, microbenchmarks.
bench:
	dune exec bench/main.exe

# Machine-readable planner benchmark: writes BENCH_rg.json (and stdout).
# The perf trajectory of the RG search is tracked across commits there.
# Timings are the median of 3 repeats (first-run JIT/GC noise dominates
# single-shot numbers); --jobs 1 keeps the recorded timings sequential —
# the same configuration the bench-gate measures against.  --warm also
# records warm_search_ms, the search time of a session re-plan that
# reuses the compiled problem and the hot SLRG oracle.
bench-json:
	dune exec bench/main.exe -- --json --tag pr9 --repeat 3 --jobs 1 --warm

# Profile the Small-C run: trace every planner phase to JSONL and render
# the span tree / counter summary.
profile:
	dune build bin tools
	dune exec -- sekitei plan --network small --levels C \
	  --trace /tmp/sekitei_profile.jsonl > /dev/null
	dune exec -- tools/trace_report.exe /tmp/sekitei_profile.jsonl

clean:
	dune clean
