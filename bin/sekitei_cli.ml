(* Command-line interface to the Sekitei planner.

   Subcommands:
     plan      - plan a built-in evaluation scenario or a DSL spec file
     batch     - plan several DSL spec files in parallel (multicore)
     check     - static preflight analysis (no search); text or JSON
     validate  - check a DSL spec file for well-formedness
     table1 / table2 / figure - regenerate the paper's exhibits
     topology  - generate topologies and export DOT *)

open Cmdliner
module Topology = Sekitei_network.Topology
module Generators = Sekitei_network.Generators
module Dot = Sekitei_network.Dot
module Model = Sekitei_spec.Model
module Validate = Sekitei_spec.Validate
module Dsl = Sekitei_spec.Dsl
module Planner = Sekitei_core.Planner
module Telemetry = Sekitei_telemetry.Telemetry
module Registry = Sekitei_telemetry.Registry
module Export = Sekitei_telemetry.Export
module Plan = Sekitei_core.Plan
module Compile = Sekitei_core.Compile
module Replay = Sekitei_core.Replay
module Media = Sekitei_domains.Media
module Diagnostic = Sekitei_util.Diagnostic
module Preflight = Sekitei_analysis.Preflight
module Certify = Sekitei_analysis.Certify
module Scenarios = Sekitei_harness.Scenarios
module Table2 = Sekitei_harness.Table2
module Figures = Sekitei_harness.Figures

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let network_arg =
  let doc = "Built-in evaluation network: tiny, small or large." in
  Arg.(value & opt (enum [ ("tiny", `Tiny); ("small", `Small); ("large", `Large) ]) `Tiny
       & info [ "network"; "n" ] ~docv:"NET" ~doc)

let levels_arg =
  let doc = "Resource-level scenario (Table 1): A, B, C, D or E." in
  let scenarios =
    List.map (fun s -> (Media.scenario_name s, s)) Media.all_scenarios
  in
  Arg.(value & opt (enum scenarios) Media.C & info [ "levels"; "l" ] ~docv:"LVL" ~doc)

let seed_arg =
  let doc = "PRNG seed for the large network generator." in
  Arg.(value & opt int64 0xC0FFEEL & info [ "seed" ] ~docv:"SEED" ~doc)

let spec_arg =
  let doc = "Plan a CPP specification file (DSL) instead of a built-in scenario." in
  Arg.(value & opt (some file) None & info [ "spec"; "s" ] ~docv:"FILE" ~doc)

let verbose_arg =
  let doc = "Log planner phase progress to stderr." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let audit_arg =
  let doc = "Print a deployment audit (link/node utilization, streams)." in
  Arg.(value & flag & info [ "audit" ] ~doc)

let suggest_arg =
  let doc = "Derive resource levels automatically from demands and supplies \
             instead of a Table 1 scenario." in
  Arg.(value & flag & info [ "suggest-levels" ] ~doc)

let deployment_dot_arg =
  let doc = "Write the solved deployment as Graphviz DOT to this file." in
  Arg.(value & opt (some string) None & info [ "deployment-dot" ] ~docv:"FILE" ~doc)

let rg_budget_arg =
  let doc = "Maximum RG search expansions." in
  Arg.(value & opt int Planner.default_config.Planner.rg_max_expansions
       & info [ "rg-budget" ] ~docv:"N" ~doc)

let slrg_budget_arg =
  let doc = "SLRG set-node budget per heuristic query." in
  Arg.(value & opt int Planner.default_config.Planner.slrg_query_budget
       & info [ "slrg-budget" ] ~docv:"N" ~doc)

let trace_arg =
  let doc = "Write a JSONL telemetry trace (spans, counters, progress) to \
             this file.  Summarize it with tools/trace_report.exe." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc = "Print periodic search-progress events (expansions, open-list \
             size, best f) to stderr." in
  Arg.(value & flag & info [ "progress" ] ~doc)

let flight_arg =
  let doc = "Arm a flight recorder: keep the last telemetry events in a \
             fixed ring (no sink needed) and dump them as JSONL to this \
             file when a plan fails on a budget or deadline cutoff or an \
             escaping exception.  Summarize the dump with \
             tools/trace_report.exe." in
  Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)

let explain_arg =
  let doc = "Explain the outcome.  For a plan: per-action cost \
             contributions, chosen levels, and the binding resource \
             constraint (with slack) of every step.  For a failure: an \
             unsolvability certificate (pruned proposition chain, or the \
             best-f frontier of an out-of-budget search)." in
  Arg.(value & flag & info [ "explain" ] ~doc)

let hquality_arg =
  let doc = "Profile heuristic quality: record h(n) along the solution \
             path and report per-phase error percentiles, admissibility \
             violations, and the wasted-work ratio." in
  Arg.(value & flag & info [ "hquality" ] ~doc)

let eager_h_arg =
  let doc = "Disable lazy two-stage heuristic evaluation: run the SLRG \
             oracle on every generated RG node instead of on pop.  \
             Solvability and the optimal cost bound are identical either \
             way; the flag exists for A/B timing of the deferral." in
  Arg.(value & flag & info [ "eager-h" ] ~doc)

let verify_arg =
  let doc = "Re-validate every emitted plan through the independent \
             certifier (forward semantic replay plus a bit-exact cost \
             re-derivation, sharing no code with the planner's own \
             replay).  A rejected plan fails the run with a \
             Certification_failed diagnostic — always a planner bug." in
  Arg.(value & flag & info [ "verify" ] ~doc)

let deadline_arg =
  let doc = "Per-request wall-clock deadline in milliseconds.  An \
             expired request stops gracefully with a Deadline_exceeded \
             failure carrying the interrupted phase and, when the search \
             frontier was reached, an admissible cost lower bound." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"MS" ~doc)

(* Assemble the run's telemetry handle from --trace/--progress/--flight;
   returns the handle and a finalizer that flushes and closes the sinks.
   --flight arms a ring recorder with a dump path: the planner's failure
   hook writes the JSONL postmortem, so no sink (and no finalizer work)
   is needed for it. *)
let telemetry_of ?flight trace progress =
  let flight =
    Option.map (fun path -> Telemetry.Flight.create ~dump_path:path ()) flight
  in
  let progress_sink =
    if not progress then []
    else
      [
        Telemetry.sink (function
          | Telemetry.Progress { name; t_ms; attrs } ->
              Format.eprintf "[%7.1fms] %s:%a@." t_ms name
                (fun fmt ->
                  List.iter (fun (k, v) ->
                      Format.fprintf fmt " %s=%s" k
                        (match v with
                        | Telemetry.Bool b -> string_of_bool b
                        | Telemetry.Int i -> string_of_int i
                        | Telemetry.Float f -> Printf.sprintf "%g" f
                        | Telemetry.Str s -> s)))
                attrs
          | _ -> ());
      ]
  in
  match trace with
  | None when progress_sink = [] && Option.is_none flight ->
      (Telemetry.null, fun () -> ())
  | None ->
      let t = Telemetry.create ?flight progress_sink in
      (t, fun () -> Telemetry.close t)
  | Some file ->
      let oc = open_out file in
      let t = Telemetry.create ?flight (Telemetry.jsonl oc :: progress_sink) in
      ( t,
        fun () ->
          Telemetry.close t;
          close_out oc;
          Format.printf "trace written to %s@." file )

let scenario_of = function
  | `Tiny -> Scenarios.tiny ()
  | `Small -> Scenarios.small ()
  | `Large -> Scenarios.large ()

let config_of ?(explain = false) ?(profile_h = false) ?(defer_h = true)
    ?(certify = false) ?deadline_ms rg slrg =
  { Planner.default_config with
    Planner.rg_max_expansions = rg;
    slrg_query_budget = slrg;
    explain;
    profile_h;
    defer_h;
    certify;
    deadline_ms }

(* ------------------------------------------------------------------ *)
(* plan                                                                *)
(* ------------------------------------------------------------------ *)

let report_outcome ?dot_file ?(audit = false) pb (report : Planner.report) =
  (match (audit, report.Planner.result) with
  | true, Ok p -> (
      match Sekitei_core.Audit.of_plan pb p with
      | Ok a -> print_string (Sekitei_core.Audit.to_string pb a)
      | Error e -> Format.printf "audit failed: %s@." e)
  | _ -> ());
  (match (dot_file, report.Planner.result) with
  | Some file, Ok p ->
      Sekitei_core.Deployment_dot.write_file pb p file;
      Format.printf "deployment graph written to %s@." file
  | _ -> ());
  (match report.Planner.result with
  | Ok p ->
      Format.printf "Plan (%d actions, cost bound %g, realized cost %g):@."
        (Plan.length p) p.Plan.cost_lb p.Plan.metrics.Replay.realized_cost;
      Format.printf "%s@." (Plan.to_string pb p);
      let m = p.Plan.metrics in
      Format.printf "LAN peak %g, WAN peak %g; delivered:@." m.Replay.lan_peak
        m.Replay.wan_peak;
      List.iter
        (fun (i, n, v) ->
          Format.printf "  %s at %s: %g@."
            pb.Sekitei_core.Problem.ifaces.(i).Model.iface_name
            (Topology.get_node pb.Sekitei_core.Problem.topo n).Topology.node_name
            v)
        m.Replay.delivered
  | Error r -> Format.printf "No plan: %a@." Planner.pp_failure r);
  (match report.Planner.explanation with
  | Some ex ->
      Format.printf "Explanation:@.%s" (Sekitei_core.Explain.render ex)
  | None -> ());
  (match report.Planner.certificate with
  | Some c ->
      Format.printf "Certificate:@.%s" (Sekitei_core.Explain.render_certificate c)
  | None -> ());
  (match Sekitei_harness.Hquality.of_report report with
  | Some hq ->
      Format.printf "Heuristic quality:@.%s" (Sekitei_harness.Hquality.render hq)
  | None -> ());
  Format.printf "Stats: %a@." Planner.pp_stats report.Planner.stats;
  Format.printf "Phases: %a@." Planner.pp_phases report.Planner.phases;
  match report.Planner.result with Ok _ -> 0 | Error _ -> 1

let plan_cmd =
  let run spec network levels seed rg slrg deadline dot_file audit suggest
      trace progress flight explain hquality eager_h verify verbose =
    setup_logs verbose;
    let config =
      config_of ~explain ~profile_h:hquality ~defer_h:(not eager_h)
        ~certify:verify ?deadline_ms:deadline rg slrg
    in
    let telemetry, finish_telemetry = telemetry_of ?flight trace progress in
    let code =
      match spec with
      | Some file -> (
          match Dsl.load_file file with
          | exception Dsl.Dsl_error msg ->
              Format.eprintf "spec error: %s@." msg;
              2
          | doc -> (
              match doc.Dsl.topo with
              | None ->
                  Format.eprintf "spec file has no network block@.";
                  2
              | Some topo ->
                  let leveling =
                    if suggest then Sekitei_spec.Leveling.suggest doc.Dsl.app
                    else doc.Dsl.leveling
                  in
                  let pb = Compile.compile topo doc.Dsl.app leveling in
                  report_outcome ?dot_file ~audit pb
                    (Planner.plan
                       (Planner.request ~config ~telemetry topo doc.Dsl.app
                          ~leveling))))
      | None ->
          let sc =
            match network with
            | `Large -> Scenarios.large ~seed ()
            | other -> scenario_of other
          in
          let leveling =
            if suggest then Sekitei_spec.Leveling.suggest sc.Scenarios.app
            else Media.leveling levels sc.Scenarios.app
          in
          let pb = Compile.compile sc.Scenarios.topo sc.Scenarios.app leveling in
          Format.printf "Planning %s with %s...@." sc.Scenarios.name
            (if suggest then "suggested levels"
             else "level scenario " ^ Media.scenario_name levels);
          report_outcome ?dot_file ~audit pb
            (Planner.plan
               (Planner.request ~config ~telemetry sc.Scenarios.topo
                  sc.Scenarios.app ~leveling))
    in
    finish_telemetry ();
    if verify && code = 0 then Format.printf "plan independently certified@.";
    (match flight with
    | Some file when code <> 0 && Sys.file_exists file ->
        Format.printf "flight dump written to %s@." file
    | _ -> ());
    code
  in
  let term =
    Term.(
      const run $ spec_arg $ network_arg $ levels_arg $ seed_arg $ rg_budget_arg
      $ slrg_budget_arg $ deadline_arg $ deployment_dot_arg $ audit_arg
      $ suggest_arg $ trace_arg $ progress_arg $ flight_arg $ explain_arg
      $ hquality_arg $ eager_h_arg $ verify_arg $ verbose_arg)
  in
  Cmd.v (Cmd.info "plan" ~doc:"Solve a component placement problem") term

(* ------------------------------------------------------------------ *)
(* batch                                                               *)
(* ------------------------------------------------------------------ *)

let batch_cmd =
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"SPEC" ~doc:"CPP specification files (DSL)")
  in
  let jobs_arg =
    let doc =
      "Worker domains for the batch (default 0 = one per recommended \
       core, capped at the batch size).  --jobs 1 plans sequentially on \
       the calling domain."
    in
    Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let run files jobs rg slrg eager_h verify verbose =
    setup_logs verbose;
    let config = config_of ~defer_h:(not eager_h) ~certify:verify rg slrg in
    (* Parse every spec up front: a syntax error anywhere aborts the
       batch before any planning starts (exit 2, like plan --spec). *)
    let parsed =
      List.map
        (fun file ->
          match Dsl.load_file file with
          | exception Dsl.Dsl_error msg -> Error (file, msg)
          | doc -> (
              match doc.Dsl.topo with
              | None -> Error (file, "spec file has no network block")
              | Some topo ->
                  Ok (file, Planner.request ~config topo doc.Dsl.app
                              ~leveling:doc.Dsl.leveling)))
        files
    in
    match
      List.find_map (function Error e -> Some e | Ok _ -> None) parsed
    with
    | Some (file, msg) ->
        Format.eprintf "%s: spec error: %s@." file msg;
        2
    | None ->
        let named =
          List.filter_map
            (function Ok fr -> Some fr | Error _ -> None)
            parsed
        in
        let reports =
          Planner.plan_batch ~jobs (List.map snd named)
        in
        (* Reports come back in input order regardless of jobs; one
           summary line per file, in the order given on the command
           line. *)
        let failed = ref 0 in
        List.iter2
          (fun (file, _) (r : Planner.report) ->
            match r.Planner.result with
            | Ok p ->
                Format.printf "%s: plan cost %g (%d actions)@." file
                  p.Plan.cost_lb (Plan.length p)
            | Error reason ->
                incr failed;
                Format.printf "%s: no plan: %a@." file
                  Planner.pp_failure reason)
          named reports;
        if !failed = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Plan several specification files in parallel (one planner per \
          worker domain; results print in input order)")
    Term.(
      const run $ files $ jobs_arg $ rg_budget_arg $ slrg_budget_arg
      $ eager_h_arg $ verify_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* session                                                             *)
(* ------------------------------------------------------------------ *)

module Session = Planner.Session

exception Script_error of int * string

(* One parsed script line.  The grammar is deliberately tiny:
     plan
     metrics
     update set-node <node> <resource> <value>
     update set-link <link> <resource> <value>
     update remove-link <link>
     update fail-node <node>
   `metrics` prints the session's always-on registry (Prometheus text)
   at that point in the script.  Blank lines and `#` comments are
   skipped.  Node and link operands are
   stable integer ids: removals tombstone a link without renumbering the
   survivors, so an id printed by `plan`/`audit` output stays valid for
   the rest of the script.  Naming a removed link or a never-issued id
   is reported as a script error with the offending line. *)
type script_cmd = Do_plan | Do_metrics | Do_update of Session.delta

let parse_script file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let cmds = ref [] and lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let fail msg = raise (Script_error (!lineno, msg)) in
           let int_of what s =
             match int_of_string_opt s with
             | Some v -> v
             | None -> fail (Printf.sprintf "bad %s %S" what s)
           in
           let float_of what s =
             match float_of_string_opt s with
             | Some v -> v
             | None -> fail (Printf.sprintf "bad %s %S" what s)
           in
           match
             String.split_on_char ' ' line
             |> List.concat_map (String.split_on_char '\t')
             |> List.filter (fun t -> t <> "")
           with
           | [] -> ()
           | comment :: _ when String.length comment > 0 && comment.[0] = '#'
             ->
               ()
           | [ "plan" ] -> cmds := (!lineno, Do_plan) :: !cmds
           | [ "metrics" ] -> cmds := (!lineno, Do_metrics) :: !cmds
           | [ "update"; "set-node"; n; res; v ] ->
               cmds :=
                 ( !lineno,
                   Do_update
                     (Session.Set_node_resource
                        {
                          node = int_of "node id" n;
                          resource = res;
                          value = float_of "value" v;
                        }) )
                 :: !cmds
           | [ "update"; "set-link"; l; res; v ] ->
               cmds :=
                 ( !lineno,
                   Do_update
                     (Session.Set_link_resource
                        {
                          link = int_of "link id" l;
                          resource = res;
                          value = float_of "value" v;
                        }) )
                 :: !cmds
           | [ "update"; "remove-link"; l ] ->
               cmds :=
                 ( !lineno,
                   Do_update (Session.Remove_link { link = int_of "link id" l })
                 )
                 :: !cmds
           | [ "update"; "fail-node"; n ] ->
               cmds :=
                 ( !lineno,
                   Do_update (Session.Fail_node { node = int_of "node id" n })
                 )
                 :: !cmds
           | first :: _ ->
               fail
                 (Printf.sprintf
                    "unknown command %S (expected plan/metrics/update)" first)
         done
       with End_of_file -> ());
      List.rev !cmds)

let render_delta = function
  | Session.Set_node_resource { node; resource; value } ->
      Printf.sprintf "set-node %d %s %g" node resource value
  | Session.Set_link_resource { link; resource; value } ->
      Printf.sprintf "set-link %d %s %g" link resource value
  | Session.Remove_link { link } -> Printf.sprintf "remove-link %d" link
  | Session.Fail_node { node } -> Printf.sprintf "fail-node %d" node

let session_cmd =
  let script_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"SCRIPT"
          ~doc:
            "Session script: one command per line — $(b,plan), \
             $(b,metrics) (print the session's metric registry as \
             Prometheus text), $(b,update set-node N RES V), $(b,update \
             set-link L RES V), $(b,update remove-link L), $(b,update \
             fail-node N); blank lines and $(b,#) comments are ignored.")
  in
  let spec_req_arg =
    let doc = "CPP specification file (DSL) the session plans against." in
    Arg.(
      required & opt (some file) None & info [ "spec"; "s" ] ~docv:"FILE" ~doc)
  in
  let run spec script rg slrg deadline flight verify verbose =
    setup_logs verbose;
    match Dsl.load_file spec with
    | exception Dsl.Dsl_error msg ->
        Format.eprintf "spec error: %s@." msg;
        2
    | doc -> (
        match doc.Dsl.topo with
        | None ->
            Format.eprintf "spec file has no network block@.";
            2
        | Some topo -> (
            match parse_script script with
            | exception Script_error (line, msg) ->
                Format.eprintf "%s:%d: %s@." script line msg;
                2
            | cmds ->
                let config =
                  config_of ~certify:verify ?deadline_ms:deadline rg slrg
                in
                let telemetry, finish_telemetry =
                  telemetry_of ?flight None false
                in
                let session =
                  Session.create
                    (Planner.request ~config ~telemetry topo doc.Dsl.app
                       ~leveling:doc.Dsl.leveling)
                in
                let finish code =
                  finish_telemetry ();
                  code
                in
                let plans = ref 0 and failed = ref 0 in
                try
                List.iter
                  (fun (line, cmd) ->
                    match cmd with
                    | Do_plan ->
                        incr plans;
                        let warm = Session.is_warm session in
                        let r = Session.plan session in
                        let s = r.Session.stats in
                        let temperature = if warm then "warm" else "cold" in
                        (match r.Session.result with
                        | Ok p ->
                            Format.printf
                              "plan %d (%s): cost %g (%d actions), \
                               invalidated=%d evicted=%d@."
                              !plans temperature p.Plan.cost_lb (Plan.length p)
                              s.Session.invalidated_actions
                              s.Session.evicted_entries
                        | Error reason ->
                            incr failed;
                            Format.printf
                              "plan %d (%s): no plan: %a, invalidated=%d \
                               evicted=%d@."
                              !plans temperature Session.pp_failure reason
                              s.Session.invalidated_actions
                              s.Session.evicted_entries)
                    | Do_metrics ->
                        print_string
                          (Export.to_prometheus (Session.metrics_snapshot session))
                    | Do_update delta -> (
                        match Session.update session delta with
                        | (_ : Session.t) ->
                            Format.printf
                              "update %s: ok (%d nodes, %d links)@."
                              (render_delta delta)
                              (Topology.node_count (Session.topology session))
                              (Topology.link_count (Session.topology session))
                        | exception Topology.Stale_link l ->
                            raise
                              (Script_error
                                 ( line,
                                   Printf.sprintf
                                     "update %s: link %d was removed by an \
                                      earlier update"
                                     (render_delta delta) l ))
                        | exception Invalid_argument msg ->
                            raise
                              (Script_error
                                 ( line,
                                   Printf.sprintf "update %s: %s"
                                     (render_delta delta) msg ))))
                  cmds;
                finish (if !failed = 0 then 0 else 1)
                with Script_error (line, msg) ->
                  Format.eprintf "%s:%d: %s@." script line msg;
                  finish 2))
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:
         "Run a long-lived planning session from a script of plan/update \
          commands (warm replans reuse compiled state and the cost-oracle \
          cache across requests)")
    Term.(
      const run $ spec_req_arg $ script_arg $ rg_budget_arg $ slrg_budget_arg
      $ deadline_arg $ flight_arg $ verify_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* metrics                                                             *)
(* ------------------------------------------------------------------ *)

(* Plan through a throwaway session and expose its always-on registry.
   The exit code reflects the exposition (0 rendered, 3 schema-rejected
   under --check, 2 spec error), not the plan outcome: the command's
   product is the metrics, and a failed plan is still a valid — often the
   interesting — set of samples. *)
let metrics_cmd =
  let format_arg =
    let doc = "Exposition format: prometheus (text) or json." in
    Arg.(
      value
      & opt (enum [ ("prometheus", `Prom); ("json", `Json) ]) `Prom
      & info [ "format"; "f" ] ~docv:"FMT" ~doc)
  in
  let check_arg =
    let doc = "Also run the structural schema validator over the rendered \
               exposition; exit 3 when it rejects." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let repeat_arg =
    let doc = "Serve the request N times through one warm session, so the \
               latency histograms carry warm as well as cold samples." in
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N" ~doc)
  in
  let run spec network levels seed rg slrg deadline repeat format check
      verbose =
    setup_logs verbose;
    let config = config_of ?deadline_ms:deadline rg slrg in
    let request =
      match spec with
      | Some file -> (
          match Dsl.load_file file with
          | exception Dsl.Dsl_error msg ->
              Format.eprintf "spec error: %s@." msg;
              Error 2
          | doc -> (
              match doc.Dsl.topo with
              | None ->
                  Format.eprintf "spec file has no network block@.";
                  Error 2
              | Some topo ->
                  Ok
                    (Planner.request ~config topo doc.Dsl.app
                       ~leveling:doc.Dsl.leveling)))
      | None ->
          let sc =
            match network with
            | `Large -> Scenarios.large ~seed ()
            | other -> scenario_of other
          in
          Ok
            (Planner.request ~config sc.Scenarios.topo sc.Scenarios.app
               ~leveling:(Media.leveling levels sc.Scenarios.app))
    in
    match request with
    | Error code -> code
    | Ok req -> (
        let session = Session.create req in
        for _ = 1 to max 1 repeat do
          ignore (Session.plan session : Planner.report)
        done;
        let snap = Session.metrics_snapshot session in
        let rendered =
          match format with
          | `Prom -> Export.to_prometheus snap
          | `Json -> Sekitei_util.Json.to_string (Export.to_json snap) ^ "\n"
        in
        print_string rendered;
        if not check then 0
        else
          let verdict =
            match format with
            | `Prom -> Export.validate_prometheus rendered
            | `Json -> Export.validate_json (Export.to_json snap)
          in
          match verdict with
          | Ok () ->
              Format.eprintf "exposition schema: ok@.";
              0
          | Error msg ->
              Format.eprintf "exposition schema: %s@." msg;
              3)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Plan a request through a session and print its always-on metric \
          registry (counters, gauges, latency histograms) as Prometheus \
          text or JSON")
    Term.(
      const run $ spec_arg $ network_arg $ levels_arg $ seed_arg
      $ rg_budget_arg $ slrg_budget_arg $ deadline_arg $ repeat_arg
      $ format_arg $ check_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

(* Static preflight: validate the spec, compile it, and run the
   structural analyses — never the SLRG/RG search.  Exit 0 clean, 1 when
   the worst finding is a warning, 2 when any error (the spec is
   provably infeasible or invalid). *)
let check_cmd =
  let format_arg =
    let doc = "Report format: text (one diagnostic per line) or json." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format"; "f" ] ~docv:"FMT" ~doc)
  in
  let render format pb diags =
    (match format with
    | `Json ->
        let json =
          match pb with
          | Some pb -> Preflight.report_json pb diags
          | None ->
              (* Validation failed before compilation: no action counts. *)
              Sekitei_util.Json.Obj
                [
                  ( "errors",
                    Sekitei_util.Json.Int
                      (List.length (Diagnostic.errors diags)) );
                  ( "warnings",
                    Sekitei_util.Json.Int
                      (List.length (Diagnostic.warnings diags)) );
                  ( "diagnostics",
                    Diagnostic.list_to_json (Diagnostic.by_severity diags) );
                ]
        in
        print_string (Sekitei_util.Json.to_string json ^ "\n")
    | `Text ->
        List.iter
          (fun d -> print_endline (Diagnostic.to_string d))
          (Diagnostic.by_severity diags);
        (match pb with
        | Some pb ->
            Format.printf "%d leveled action(s); pruned %d dead@."
              (Array.length pb.Sekitei_core.Problem.actions)
              pb.Sekitei_core.Problem.pruned_actions
        | None -> ());
        Format.printf "%d error(s), %d warning(s)@."
          (List.length (Diagnostic.errors diags))
          (List.length (Diagnostic.warnings diags)));
    Diagnostic.exit_code diags
  in
  let run spec network levels seed suggest format verbose =
    setup_logs verbose;
    let case =
      match spec with
      | Some file -> (
          match Dsl.load_file file with
          | exception Dsl.Dsl_error msg ->
              Format.eprintf "spec error: %s@." msg;
              Error 2
          | doc -> (
              match doc.Dsl.topo with
              | None ->
                  Format.eprintf "spec file has no network block@.";
                  Error 2
              | Some topo ->
                  let leveling =
                    if suggest then Sekitei_spec.Leveling.suggest doc.Dsl.app
                    else doc.Dsl.leveling
                  in
                  Ok (topo, doc.Dsl.app, leveling)))
      | None ->
          let sc =
            match network with
            | `Large -> Scenarios.large ~seed ()
            | other -> scenario_of other
          in
          let leveling =
            if suggest then Sekitei_spec.Leveling.suggest sc.Scenarios.app
            else Media.leveling levels sc.Scenarios.app
          in
          Ok (sc.Scenarios.topo, sc.Scenarios.app, leveling)
    in
    match case with
    | Error code -> code
    | Ok (topo, app, leveling) -> (
        match Validate.check_diagnostics topo app with
        | _ :: _ as spec_diags ->
            (* Invalid specs never reach the compiler, so the preflight
               passes cannot run; report what the validator found. *)
            render format None spec_diags
        | [] ->
            let pb = Compile.compile topo app leveling in
            render format (Some pb) (Preflight.check pb))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Static preflight analysis of a specification: spec validation, \
          dead-action accounting, producer/placement/level-grid checks, \
          topology cuts and PLRG reachability — proves infeasibility \
          without running the planner's search (exit 2 = provably \
          infeasible or invalid, 1 = warnings, 0 = clean)")
    Term.(
      const run $ spec_arg $ network_arg $ levels_arg $ seed_arg $ suggest_arg
      $ format_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

let validate_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC" ~doc:"DSL file")
  in
  let run file =
    match Dsl.load_file file with
    | exception Dsl.Dsl_error msg ->
        Format.eprintf "parse error: %s@." msg;
        2
    | doc -> (
        match doc.Dsl.topo with
        | None ->
            Format.printf "parsed OK (no network block; skipping deep checks)@.";
            0
        | Some topo -> (
            match Validate.check topo doc.Dsl.app with
            | [] ->
                Format.printf "specification is valid@.";
                0
            | issues ->
                List.iter (fun i -> Format.printf "%a@." Validate.pp_issue i) issues;
                1))
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Check a CPP specification file")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* exhibits                                                            *)
(* ------------------------------------------------------------------ *)

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the paper's Table 1 (level scenarios)")
    Term.(
      const (fun () ->
          print_string (Figures.table1 ());
          0)
      $ const ())

let table2_cmd =
  let networks_arg =
    let doc = "Comma-separated networks to include (tiny,small,large)." in
    Arg.(value & opt (list (enum [ ("tiny", `Tiny); ("small", `Small); ("large", `Large) ]))
           [ `Tiny; `Small; `Large ]
         & info [ "networks" ] ~docv:"NETS" ~doc)
  in
  let csv_arg =
    let doc = "Also write the rows as CSV to this file." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let run networks rg slrg csv =
    let config = config_of rg slrg in
    let rows = Table2.run ~config ~networks:(List.map scenario_of networks) () in
    print_string (Table2.render rows);
    (match csv with
    | Some file ->
        Sekitei_harness.Csv_export.write_table2 rows file;
        Format.printf "rows written to %s@." file
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Regenerate the paper's Table 2 (scalability)")
    Term.(const run $ networks_arg $ rg_budget_arg $ slrg_budget_arg $ csv_arg)

let figure_cmd =
  let which =
    Arg.(required
         & pos 0
             (some (enum
                [ ("3", `F3); ("4", `F3); ("5", `F5); ("9", `F9); ("10", `F10);
                  ("ablation", `Ablation) ]))
             None
         & info [] ~docv:"FIGURE" ~doc:"3, 4, 5, 9, 10 or 'ablation'")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Include DOT output (figure 10)")
  in
  let run which dot =
    (match which with
    | `F3 -> print_string (Figures.fig3_4 ())
    | `F5 -> print_string (Figures.fig5 ())
    | `F9 -> print_string (Figures.fig9 ())
    | `F10 -> print_string (Figures.fig10 ~dot ())
    | `Ablation -> print_string (Figures.postprocess_ablation ()));
    0
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate a figure of the paper")
    Term.(const run $ which $ dot)

(* ------------------------------------------------------------------ *)
(* topology                                                            *)
(* ------------------------------------------------------------------ *)

let topology_cmd =
  let kind =
    Arg.(value
         & opt (enum
             [ ("line", `Line); ("ring", `Ring); ("star", `Star); ("grid", `Grid);
               ("transit-stub", `Ts) ])
             `Ts
         & info [ "kind"; "k" ] ~docv:"KIND" ~doc:"Generator kind")
  in
  let size =
    Arg.(value & opt int 10 & info [ "size" ] ~docv:"N" ~doc:"Node count parameter")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write DOT here instead of stdout")
  in
  let run kind size seed out =
    let rng = Sekitei_util.Prng.create ~seed in
    let topo =
      match kind with
      | `Line -> Generators.line size
      | `Ring -> Generators.ring size
      | `Star -> Generators.star size
      | `Grid -> Generators.grid size size
      | `Ts ->
          Generators.transit_stub ~rng ~transit:3 ~stubs_per_transit:3
            ~stub_size:(max 1 (size / 9)) ()
    in
    let dot = Dot.to_dot topo in
    (match out with
    | Some file ->
        Dot.write_file topo file;
        Format.printf "wrote %s (%d nodes, %d links)@." file
          (Topology.node_count topo) (Topology.link_count topo)
    | None -> print_string dot);
    0
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Generate a synthetic topology (DOT)")
    Term.(const run $ kind $ size $ seed_arg $ out)

(* ------------------------------------------------------------------ *)

let main =
  Cmd.group
    (Cmd.info "sekitei" ~version:"1.0.0"
       ~doc:"Resource-aware deployment planning for component-based applications")
    [
      plan_cmd; batch_cmd; session_cmd; metrics_cmd; check_cmd; validate_cmd;
      table1_cmd; table2_cmd; figure_cmd; topology_cmd;
    ]

let () =
  (* Make config.certify (--verify) live: hook the independent certifier
     into the core session without a core->analysis dependency. *)
  Certify.install ();
  exit (Cmd.eval' main)
