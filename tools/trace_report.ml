(* Summarize a JSONL telemetry trace (sekitei plan --trace out.jsonl)
   into an ASCII report: the span tree with call counts and self/total
   wall time, aggregated counters, final gauges, and the progress
   heartbeat count.

   Sibling spans with the same name are aggregated into one tree row
   (e.g. the hundreds of slrg.query spans under rg), so the report stays
   readable on large searches.

   With --self the tree is replaced by a flat per-span-name profile of
   *self* time (exclusive of children), sorted hottest first.  The tree
   view charges a child's wall time to every enclosing span — the
   slrg.query spans run inside rg, so their time shows up in both rows —
   whereas the self profile counts every millisecond exactly once. *)

module Json = Sekitei_util.Json
module Table = Sekitei_util.Ascii_table
module Histogram = Sekitei_util.Histogram

type span = {
  name : string;
  parent : int;
  mutable dur_ms : float;
  mutable ended : bool;
}

type trace = {
  spans : (int, span) Hashtbl.t;  (* id -> span; roots have parent 0 *)
  mutable counters : (string * int) list;  (* last total per name wins *)
  mutable gauges : (string * float) list;
  mutable progress : int;
  mutable bad_lines : int;
  mutable truncated_tail : bool;
      (* the file's last line failed to parse: a flight dump or killed
         trace cut an object mid-line; reported separately from mid-file
         junk so postmortems know the tail is missing, not corrupt *)
  mutable flight : (int * int * int) option;
      (* (capacity, recorded, dropped) from a flight-recorder dump's
         meta line: the trace is a postmortem ring, oldest events may
         have rotated out *)
  mutable next_synth_id : int;  (* fresh ids for synthesized spans *)
  mutable plan_failure : string option;
      (* "failure" attribute of a plan span's end event: the planner
         attaches the rendered failure reason there when a run returns
         no plan, so the report can lead with the outcome *)
}

let get_str j k = Option.bind (Json.member k j) Json.to_str
let get_int j k = Option.bind (Json.member k j) Json.to_int
let get_float j k = Option.bind (Json.member k j) Json.to_float

let set_assoc k v l = (k, v) :: List.remove_assoc k l

let add_event tr j =
  match get_str j "ev" with
  | Some "span_begin" -> (
      match (get_int j "id", get_str j "name", get_int j "parent") with
      | Some id, Some name, Some parent ->
          Hashtbl.replace tr.spans id
            { name; parent; dur_ms = 0.; ended = false }
      | _ -> tr.bad_lines <- tr.bad_lines + 1)
  | Some "span_end" -> (
      (match (get_str j "name", get_str j "failure") with
      | Some "plan", Some reason -> tr.plan_failure <- Some reason
      | _ -> ());
      match (get_int j "id", get_float j "dur_ms") with
      | Some id, Some dur_ms -> (
          match Hashtbl.find_opt tr.spans id with
          | Some sp ->
              sp.dur_ms <- dur_ms;
              sp.ended <- true
          | None -> (
              (* In a flight-recorder dump the matching span_begin may
                 have rotated out of the ring: synthesize a root-level
                 span from the end event (name and duration are on it)
                 instead of dropping the sample. *)
              match (tr.flight, get_str j "name") with
              | Some _, Some name ->
                  tr.next_synth_id <- tr.next_synth_id - 1;
                  Hashtbl.replace tr.spans tr.next_synth_id
                    { name; parent = 0; dur_ms; ended = true }
              | _ -> tr.bad_lines <- tr.bad_lines + 1))
      | _ -> tr.bad_lines <- tr.bad_lines + 1)
  | Some "flight_dump" ->
      tr.flight <-
        Some
          ( Option.value ~default:0 (get_int j "capacity"),
            Option.value ~default:0 (get_int j "recorded"),
            Option.value ~default:0 (get_int j "dropped") )
  | Some "counter" -> (
      match (get_str j "name", get_int j "total") with
      | Some name, Some total -> tr.counters <- set_assoc name total tr.counters
      | _ -> tr.bad_lines <- tr.bad_lines + 1)
  | Some "gauge" -> (
      match (get_str j "name", get_float j "value") with
      | Some name, Some v -> tr.gauges <- set_assoc name v tr.gauges
      | _ -> tr.bad_lines <- tr.bad_lines + 1)
  | Some "progress" -> tr.progress <- tr.progress + 1
  | _ -> tr.bad_lines <- tr.bad_lines + 1

let load path =
  let tr =
    {
      spans = Hashtbl.create 256;
      counters = [];
      gauges = [];
      progress = 0;
      bad_lines = 0;
      truncated_tail = false;
      flight = None;
      next_synth_id = 0;
      plan_failure = None;
    }
  in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = String.trim (input_line ic) in
          tr.truncated_tail <- false;
          if line <> "" then
            match Json.of_string line with
            | Ok j -> add_event tr j
            | Error _ ->
                (* Stays set if this turns out to be the last line: a
                   dump or kill cut the object mid-write. *)
                tr.truncated_tail <- true;
                tr.bad_lines <- tr.bad_lines + 1
        done
      with End_of_file -> ());
  tr

(* One aggregated tree row: same-named siblings merged. *)
type agg = {
  agg_name : string;
  calls : int;
  total_ms : float;
  children : agg list;
}

let aggregate tr =
  let children_of = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id (sp : span) ->
      let prev =
        Option.value (Hashtbl.find_opt children_of sp.parent) ~default:[]
      in
      Hashtbl.replace children_of sp.parent ((id, sp) :: prev))
    tr.spans;
  let rec group ids =
    let by_name = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun (id, (sp : span)) ->
        if not (Hashtbl.mem by_name sp.name) then order := sp.name :: !order;
        let prev =
          Option.value (Hashtbl.find_opt by_name sp.name) ~default:[]
        in
        Hashtbl.replace by_name sp.name ((id, sp) :: prev))
      ids;
    List.rev_map
      (fun name ->
        let members = Hashtbl.find by_name name in
        let kids =
          List.concat_map
            (fun (id, _) ->
              Option.value (Hashtbl.find_opt children_of id) ~default:[])
            members
        in
        {
          agg_name = name;
          calls = List.length members;
          total_ms = List.fold_left (fun a (_, sp) -> a +. sp.dur_ms) 0. members;
          children = group kids;
        })
      !order
    |> List.sort (fun a b -> Float.compare b.total_ms a.total_ms)
  in
  group (Option.value (Hashtbl.find_opt children_of 0) ~default:[])

let render_tree roots =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "span"; "calls"; "total ms"; "self ms" ]
  in
  let rec walk depth agg =
    let child_ms =
      List.fold_left (fun a c -> a +. c.total_ms) 0. agg.children
    in
    Table.add_row t
      [
        String.make (2 * depth) ' ' ^ agg.agg_name;
        string_of_int agg.calls;
        Printf.sprintf "%.2f" agg.total_ms;
        Printf.sprintf "%.2f" (Float.max 0. (agg.total_ms -. child_ms));
      ];
    List.iter (walk (depth + 1)) agg.children
  in
  List.iter (walk 0) roots;
  Table.render t

(* Flat self-time profile: per span instance, self = duration minus the
   sum of its direct children's durations; aggregated per name across
   the whole trace.  Negative instance self times (clock granularity on
   sub-microsecond spans) are clamped to zero. *)
let render_self tr =
  let child_ms = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (sp : span) ->
      let prev = Option.value (Hashtbl.find_opt child_ms sp.parent) ~default:0. in
      Hashtbl.replace child_ms sp.parent (prev +. sp.dur_ms))
    tr.spans;
  let by_name = Hashtbl.create 16 in
  Hashtbl.iter
    (fun id (sp : span) ->
      let kids = Option.value (Hashtbl.find_opt child_ms id) ~default:0. in
      let self = Float.max 0. (sp.dur_ms -. kids) in
      let calls, total, self_sum =
        Option.value (Hashtbl.find_opt by_name sp.name) ~default:(0, 0., 0.)
      in
      Hashtbl.replace by_name sp.name
        (calls + 1, total +. sp.dur_ms, self_sum +. self))
    tr.spans;
  let rows =
    Hashtbl.fold (fun name (calls, total, self) acc ->
        (name, calls, total, self) :: acc)
      by_name []
    |> List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare b a)
  in
  let grand_self =
    List.fold_left (fun acc (_, _, _, s) -> acc +. s) 0. rows
  in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "span"; "calls"; "total ms"; "self ms"; "self %" ]
  in
  List.iter
    (fun (name, calls, total, self) ->
      Table.add_row t
        [
          name;
          string_of_int calls;
          Printf.sprintf "%.2f" total;
          Printf.sprintf "%.2f" self;
          (if grand_self > 0. then
             Printf.sprintf "%.1f" (100. *. self /. grand_self)
           else "-");
        ])
    rows;
  Table.render t

(* Span-duration distributions, through the same log-bucketed histograms
   the metric registry exposes: a name spanned many times (slrg.query
   under a large search) gets p50/p90/p99/max instead of only the totals
   the tree shows.  Names with a single ended instance are omitted — a
   one-sample distribution is just the tree row again. *)
let render_histograms tr =
  let by_name = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (sp : span) ->
      if sp.ended then
        let h =
          match Hashtbl.find_opt by_name sp.name with
          | Some h -> h
          | None ->
              let h = Histogram.create () in
              Hashtbl.add by_name sp.name h;
              h
        in
        Histogram.add h sp.dur_ms)
    tr.spans;
  let rows =
    Hashtbl.fold
      (fun name h acc ->
        if Histogram.count h >= 2 then (name, h) :: acc else acc)
      by_name []
    |> List.sort (fun (_, a) (_, b) ->
           Float.compare (Histogram.sum b) (Histogram.sum a))
  in
  if rows = [] then ""
  else begin
    let t =
      Table.create
        ~aligns:
          [
            Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
            Table.Right;
          ]
        [ "span durations"; "count"; "p50 ms"; "p90 ms"; "p99 ms"; "max ms" ]
    in
    List.iter
      (fun (name, h) ->
        let p q = Printf.sprintf "%.3f" (Histogram.percentile h q) in
        Table.add_row t
          [
            name;
            string_of_int (Histogram.count h);
            p 0.50;
            p 0.90;
            p 0.99;
            Printf.sprintf "%.3f" (Histogram.max_value h);
          ])
      rows;
    "\n" ^ Table.render t
  end

let render_counters tr =
  if tr.counters = [] then ""
  else begin
    let t =
      Table.create ~aligns:[ Table.Left; Table.Right ] [ "counter"; "total" ]
    in
    List.sort (fun (_, a) (_, b) -> Int.compare b a) tr.counters
    |> List.iter (fun (name, total) ->
           Table.add_row t [ name; string_of_int total ]);
    "\n" ^ Table.render t
  end

let render_gauges tr =
  if tr.gauges = [] then ""
  else begin
    let t =
      Table.create ~aligns:[ Table.Left; Table.Right ] [ "gauge"; "last value" ]
    in
    List.sort compare tr.gauges
    |> List.iter (fun (name, v) ->
           Table.add_row t [ name; Printf.sprintf "%g" v ]);
    "\n" ^ Table.render t
  end

let () =
  let self_mode, path =
    match Sys.argv with
    | [| _; path |] -> (false, Some path)
    | [| _; "--self"; path |] | [| _; path; "--self" |] -> (true, Some path)
    | _ -> (false, None)
  in
  match path with
  | Some path ->
      let tr = load path in
      if Hashtbl.length tr.spans = 0 then begin
        Printf.eprintf "%s: no spans found\n" path;
        exit 1
      end;
      (match tr.flight with
      | Some (capacity, recorded, dropped) ->
          Printf.printf
            "flight-recorder dump: %d event(s) recorded, ring capacity %d, \
             %d rotated out\n\n"
            recorded capacity dropped
      | None -> ());
      (match tr.plan_failure with
      | Some reason -> Printf.printf "no plan: %s\n\n" reason
      | None -> ());
      if self_mode then print_string (render_self tr)
      else print_string (render_tree (aggregate tr));
      print_string (render_histograms tr);
      print_string (render_counters tr);
      print_string (render_gauges tr);
      if tr.progress > 0 then
        Printf.printf "\n%d progress heartbeat(s)\n" tr.progress;
      if tr.truncated_tail then
        Printf.printf
          "\nwarning: trailing line truncated mid-object (dump or killed \
           trace) — skipped\n";
      let mid_junk = tr.bad_lines - if tr.truncated_tail then 1 else 0 in
      if mid_junk > 0 then
        Printf.printf "\nwarning: %d unparseable line(s) skipped\n" mid_junk
  | None ->
      Printf.eprintf "usage: %s [--self] TRACE.jsonl\n" Sys.argv.(0);
      exit 2
